"""The high-level knowledge-base API.

This is the paper's "high-level interface" (Section 2.1) made concrete:
the user writes facts and rules in the paper's syntax, *declares* what
determines the identity of objects created by entity-creating rules —
never constructing skolem terms by hand — and asks queries, choosing
any of the five evaluation strategies.

Example::

    kb = KnowledgeBase.from_source('''
        node: a[linkto => b].
        node: b[linkto => c].
        path: C[src => X, dest => Y, length => 1] :- node: X[linkto => Y].
        path: C[src => X, dest => Y, length => L] :-
            node: X[linkto => Z],
            path: C0[src => Z, dest => Y, length => L0],
            L is L0 + 1.
    ''')
    kb.declare_identity("C", depends_on=("X", "Y"))     # reading 1 of §2.1
    for answer in kb.ask("path: P[src => a, dest => Y]"):
        print(answer.pretty())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence, Union

from repro.core.clauses import DefiniteClause, Program, Query
from repro.core.errors import EngineError, ResourceExhausted, TransformError
from repro.core.pretty import pretty_term
from repro.core.skolem import SkolemPolicy, skolemize_clause
from repro.core.terms import Term
from repro.core.types import SubtypeDecl
from repro.db.store import ObjectStore
from repro.engine.direct import DirectEngine
from repro.engine.topdown import SLDEngine
from repro.engine.tabling import TabledEngine
from repro.fol.subst import Substitution
from repro.lang.parser import parse_program, parse_query
from repro.runtime.faults import fault_point, register_fault_point
from repro.runtime.governor import GovernanceSummary, Governor, PartialResult
from repro.transform.clauses import (
    clause_to_generalized,
    program_to_fol,
    query_to_fol,
)
from repro.transform.terms import fol_to_identity

__all__ = [
    "Answer",
    "KnowledgeBase",
    "QueryResult",
    "Transaction",
    "ENGINES",
]

#: The evaluation strategies `ask` accepts.
ENGINES = ("direct", "bottomup", "seminaive", "sld", "tabled")

# Failure points of the commit path, in execution order.  Each sits
# immediately *before* the state change it names, so an injected crash
# exercises "everything up to here happened, nothing after did" — the
# checkpoint/restore in :meth:`Transaction.commit` must erase it all.
_FP_COMMIT_BEGIN = register_fault_point("kb.commit.begin")
_FP_COMMIT_REMAT = register_fault_point("kb.commit.rematerialize")
_FP_COMMIT_APPLY = register_fault_point("kb.commit.apply")
_FP_COMMIT_SWAP = register_fault_point("kb.commit.swap")
_FP_COMMIT_VERSION = register_fault_point("kb.commit.version")


@dataclass(frozen=True)
class Answer:
    """One query answer: a binding of query variables to ground terms."""

    binding: tuple[tuple[str, Term], ...]

    def __getitem__(self, name: str) -> Term:
        for key, value in self.binding:
            if key == name:
                return value
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(key == name for key, _ in self.binding)

    def keys(self) -> list[str]:
        return [key for key, _ in self.binding]

    def pretty(self) -> dict[str, str]:
        """The binding rendered in the paper's term syntax."""
        return {key: pretty_term(value) for key, value in self.binding}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k} = {v}" for k, v in self.pretty().items())
        return f"Answer({inner})"


@dataclass
class QueryResult:
    """Answers plus the governance outcome of one :meth:`KnowledgeBase.query`.

    Iterates and indexes like the answer list; ``complete`` says whether
    the evaluation ran to fixpoint/exhaustion or was interrupted by a
    limit, in which case ``limit`` names the limit family (``deadline``,
    ``budget``, ``facts``, ``depth``, ``cancelled``) and ``reason``
    carries the diagnostic.  An incomplete result is *sound*: every
    answer it holds is a real answer; some answers may be missing.
    """

    answers: list[Answer] = field(default_factory=list)
    complete: bool = True
    limit: str = ""
    reason: str = ""
    elapsed: float = 0.0
    steps: int = 0
    governance: Optional[GovernanceSummary] = None
    report: Any = None

    @property
    def incomplete(self) -> bool:
        return not self.complete

    def __iter__(self):
        return iter(self.answers)

    def __len__(self) -> int:
        return len(self.answers)

    def __getitem__(self, index):
        return self.answers[index]

    def __bool__(self) -> bool:
        return bool(self.answers)

    def __repr__(self) -> str:
        status = "complete" if self.complete else f"partial: {self.limit}"
        return f"QueryResult({len(self.answers)} answers, {status})"


class KnowledgeBase:
    """Facts, rules, identity declarations and multi-engine querying."""

    def __init__(
        self,
        program: Optional[Program] = None,
        default_engine: str = "direct",
        sld_depth: int = 64,
        sld_select: str = "smallest",
    ) -> None:
        if default_engine not in ENGINES:
            raise EngineError(f"unknown engine {default_engine!r}; choose from {ENGINES}")
        self._program = program if program is not None else Program(())
        self.default_engine = default_engine
        self.sld_depth = sld_depth
        self.sld_select = sld_select
        self._direct: Optional[DirectEngine] = None
        self._fol_cache = None
        self._fol_facts = {}
        self._incremental = None
        self._incremental_rules = None
        self._version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_source(cls, source: str, **kwargs) -> "KnowledgeBase":
        """Build a knowledge base from program text (clauses, subtype
        declarations; inline queries in the text are ignored here —
        pass them to :meth:`ask`)."""
        unit = parse_program(source)
        return cls(unit.program, **kwargs)

    @classmethod
    def load(cls, path: str, **kwargs) -> "KnowledgeBase":
        """Read a program file (the paper's concrete syntax)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_source(handle.read(), **kwargs)

    def save(self, path: str) -> None:
        """Write the program in concrete syntax; :meth:`load` restores
        it exactly (the printer and parser round-trip)."""
        from repro.core.pretty import pretty_program

        with open(path, "w", encoding="utf-8") as handle:
            handle.write(pretty_program(self._program))
            handle.write("\n")

    def add_source(self, source: str) -> None:
        """Parse and append more clauses / subtype declarations."""
        unit = parse_program(source)
        self._program = Program(
            self._program.clauses + unit.program.clauses,
            self._program.subtypes + unit.program.subtypes,
        )
        self._invalidate()

    def add_clause(self, clause: DefiniteClause) -> None:
        self._program = self._program.extended(clause)
        self._invalidate()

    def add_clauses(self, clauses: Iterable[DefiniteClause]) -> None:
        self._program = Program(
            self._program.clauses + tuple(clauses), self._program.subtypes
        )
        self._invalidate()

    def add_subtype(self, sub: str, sup: str) -> None:
        self._program = Program(
            self._program.clauses, self._program.subtypes + (SubtypeDecl(sub, sup),)
        )
        self._invalidate()

    @property
    def program(self) -> Program:
        return self._program

    def _invalidate(self) -> None:
        self._direct = None
        self._fol_cache = None
        self._fol_facts = {}
        self._incremental = None
        self._incremental_rules = None
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic snapshot counter: bumped by every program change —
        committed transactions included — never by queries.  Two reads
        seeing the same version saw the same knowledge base."""
        return self._version

    def _checkpoint(self) -> dict:
        """Everything a failed commit must put back: the program (an
        immutable value — a reference suffices), the version counter,
        the derived caches, and the maintained model's deep state."""
        return {
            "program": self._program,
            "version": self._version,
            "fol_cache": self._fol_cache,
            "fol_facts": dict(self._fol_facts),
            "direct": self._direct,
            "incremental": self._incremental,
            "incremental_rules": self._incremental_rules,
            "engine_state": (
                self._incremental.checkpoint()
                if self._incremental is not None
                else None
            ),
        }

    def _restore(self, checkpoint: dict) -> None:
        self._program = checkpoint["program"]
        self._version = checkpoint["version"]
        self._fol_cache = checkpoint["fol_cache"]
        self._fol_facts = checkpoint["fol_facts"]
        self._direct = checkpoint["direct"]
        self._incremental = checkpoint["incremental"]
        self._incremental_rules = checkpoint["incremental_rules"]
        if checkpoint["incremental"] is not None:
            checkpoint["incremental"].restore(checkpoint["engine_state"])

    # ------------------------------------------------------------------
    # Identity declarations (the Section 2.1 high-level interface)
    # ------------------------------------------------------------------

    def declare_identity(
        self,
        variable: str,
        depends_on: Sequence[str],
        functor: str = "id",
        clause_index: Optional[int] = None,
    ) -> int:
        """Declare that the existential object variable ``variable`` is
        determined by the variables ``depends_on``.

        The system replaces the variable with the skolem identity
        ``functor(depends_on...)`` — "the user would not give the
        explicit construction id(X, Y) of identities, but only that
        object variable C in the original rules is existentially
        dependent upon X and Y".

        Without ``clause_index`` the declaration applies to *every*
        clause in which ``variable`` is existential (head-only) and the
        dependencies occur; returns how many clauses were rewritten
        (raising if none were).
        """
        clauses = list(self._program.clauses)
        rewritten = 0
        indices = [clause_index] if clause_index is not None else range(len(clauses))
        for index in indices:
            clause = clauses[index]
            if variable not in clause.head_only_variables():
                if clause_index is not None:
                    raise TransformError(
                        f"variable {variable!r} is not existential in clause {index}"
                    )
                continue
            policy = SkolemPolicy(variable, tuple(depends_on), functor)
            clauses[index] = skolemize_clause(clause, policy)
            rewritten += 1
        if not rewritten:
            raise TransformError(
                f"no clause has {variable!r} as an existential (head-only) variable"
            )
        self._program = Program(tuple(clauses), self._program.subtypes)
        self._invalidate()
        return rewritten

    def existential_variables(self) -> list[tuple[int, frozenset[str]]]:
        """Per clause, its head-only (existential) variables — what
        still needs a :meth:`declare_identity` before evaluation."""
        out = []
        for index, clause in enumerate(self._program.clauses):
            head_only = clause.head_only_variables()
            if head_only:
                out.append((index, frozenset(head_only)))
        return out

    # ------------------------------------------------------------------
    # Transactional updates (incremental maintenance)
    # ------------------------------------------------------------------

    def transaction(self) -> "Transaction":
        """Open a batched update: buffer fact insertions/retractions,
        then commit them in one maintenance run.

        As a context manager it commits on clean exit and rolls back if
        the block raises::

            with kb.transaction() as txn:
                txn.insert("node: d[linkto => a].")
                txn.retract("node: a[linkto => b].")
            # committed here; kb.version has advanced by one

        Commit keeps the materialized model consistent *incrementally*
        (counting + delete/rederive over the compiled join plans) —
        O(change), not O(database) — falling back to a full
        re-materialization only when the update changes the translated
        rule set (e.g. a fact introduces a new type symbol, adding a
        type axiom) or the program uses negation.  The returned
        :class:`~repro.incremental.engine.MaintenanceStats` says which
        path ran and what it did.
        """
        return Transaction(self)

    def incremental_engine(self, governor=None):
        """The maintained materialized model (built and materialized on
        first use).  Raises for negated programs — maintenance covers
        the positive fragment, like the positive fixpoint engines.

        A ``governor`` bounds the first-use materialization (a governed
        transaction commit must not hang in its warm-up); a tripped
        limit propagates as :class:`~repro.core.errors.ResourceExhausted`
        and the half-built engine is discarded.
        """
        if self._uses_negation():
            from repro.core.errors import UnsupportedFeatureError

            raise UnsupportedFeatureError(
                "incremental maintenance handles the positive fragment "
                "only; negated programs fall back to full recomputation"
            )
        if self._incremental is None:
            from repro.incremental import IncrementalEngine

            fol = self._fol_program()
            engine = IncrementalEngine(fol)
            outcome = engine.materialize(governor=governor)
            if isinstance(outcome, PartialResult) and outcome.incomplete:
                outcome.unwrap()
            self._incremental = engine
            self._incremental_rules = self._rule_key(fol)
        return self._incremental

    @staticmethod
    def _rule_key(fol_program) -> tuple:
        return tuple(
            clause for clause in fol_program.clauses if not clause.is_fact
        )

    @staticmethod
    def _fact_atoms(clause: DefiniteClause) -> list:
        """The ground first-order conjuncts of one fact clause — what a
        transactional insert/retract of that clause means to the
        maintenance engine."""
        from repro.fol.atoms import atom_is_ground

        generalized = clause_to_generalized(clause)
        if generalized.body:
            raise EngineError(
                "transactions update facts only; add rules with "
                "add_source (rule changes re-materialize)"
            )
        bad = [h for h in generalized.heads if not atom_is_ground(h)]
        if bad:
            raise EngineError(
                "update fact is not ground — declare_identity any "
                f"existential variable first (offending atom: {bad[0]!r})"
            )
        return list(generalized.heads)

    def _commit_update(
        self, inserts, retracts, tracer=None, report=None, governor=None
    ):
        """Apply one committed transaction.  Retracts are matched
        against pending inserts first (same-transaction cancellation),
        then against the program (first structurally equal fact clause);
        unmatched retracts are ignored, mirroring
        :meth:`repro.db.updates.UpdatableStore.retract` returning
        ``False``.

        This method is NOT atomic on its own — :meth:`Transaction.commit`
        wraps it with a checkpoint and restores on any failure,
        including a governor limit tripping mid-maintenance.
        """
        from repro.incremental import IncrementalEngine, MaintenanceStats

        fault_point(_FP_COMMIT_BEGIN)
        pending = list(inserts)
        current = list(self._program.clauses)
        effective_retracts = []
        ignored = 0
        for clause in retracts:
            if clause in pending:
                pending.remove(clause)
            elif clause in current:
                current.remove(clause)
                effective_retracts.append(clause)
            else:
                ignored += 1
        new_program = Program(
            tuple(current) + tuple(pending), self._program.subtypes
        )
        if self._uses_negation():
            # No maintained model exists for negated programs; swap the
            # program and let the stratified engine recompute lazily.
            self._program = new_program
            self._invalidate()
            stats = MaintenanceStats(
                operation="apply",
                retracts_ignored=ignored,
                fallback=(
                    "program uses negation; the stratified engine "
                    "recomputes on the next query"
                ),
            )
            if report is not None:
                report.engine = report.engine or "incremental"
                report.maintenance = stats
            return stats
        engine = self.incremental_engine(governor)  # warm on the pre-state
        new_fol = program_to_fol(new_program)
        rule_key = self._rule_key(new_fol)
        if rule_key != self._incremental_rules:
            # The translated rule set changed (new type symbols add
            # type axioms; rules may have been edited through another
            # door): counting/DRed bookkeeping no longer matches, so
            # re-materialize from scratch and say so.
            fault_point(_FP_COMMIT_REMAT)
            engine = IncrementalEngine(new_fol)
            outcome = engine.materialize(
                tracer=tracer, report=report, governor=governor
            )
            if isinstance(outcome, PartialResult) and outcome.incomplete:
                # A half-built replacement model cannot back a commit;
                # surface the limit so the wrapper restores and degrades.
                outcome.unwrap()
            stats = engine.last_stats
            stats.fallback = (
                "translated rule set changed; model re-materialized "
                "from scratch"
            )
            stats.edb_inserted = sum(
                len(self._fact_atoms(clause)) for clause in pending
            )
            stats.edb_retracted = sum(
                len(self._fact_atoms(clause)) for clause in effective_retracts
            )
            stats.retracts_ignored += ignored
            self._program = new_program
            self._invalidate()
            self._incremental = engine
            self._incremental_rules = rule_key
            return stats
        insert_atoms = [
            atom for clause in pending for atom in self._fact_atoms(clause)
        ]
        retract_atoms = [
            atom
            for clause in effective_retracts
            for atom in self._fact_atoms(clause)
        ]
        fault_point(_FP_COMMIT_APPLY)
        stats = engine.apply(
            insert_atoms, retract_atoms, tracer=tracer, report=report,
            governor=governor,
        )
        stats.retracts_ignored += ignored
        fault_point(_FP_COMMIT_SWAP)
        self._program = new_program
        # Derived caches restate the program; the maintained model IS
        # the new state, so it survives the invalidation.
        self._direct = None
        self._fol_cache = new_fol
        self._fol_facts = {}
        fault_point(_FP_COMMIT_VERSION)
        self._version += 1
        return stats

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def ask(
        self,
        query: Union[str, Query],
        engine: Optional[str] = None,
        tracer=None,
        report=None,
    ) -> list[Answer]:
        """Answer a query with the chosen engine (default: the KB's).

        All engines return the same answer set on terminating programs
        (tested); they differ in cost profile — see DESIGN.md and
        docs/EVALUATION.md.

        ``tracer``/``report`` are the :mod:`repro.obs` hooks.  A tracer
        records timed spans under every engine; an
        :class:`~repro.obs.ExplainReport` gets the per-rule, per-round
        account from the fixpoint engines (direct, bottomup, seminaive —
        SLD and tabling have no rounds to report, only spans).  Passing
        either forces a fresh evaluation instead of reusing the cached
        model, so the run being described is the run you asked about.
        """
        engine = engine if engine is not None else self.default_engine
        if engine not in ENGINES:
            raise EngineError(f"unknown engine {engine!r}; choose from {ENGINES}")
        parsed = parse_query(query) if isinstance(query, str) else query
        if engine == "direct":
            answers, _ = self._ask_direct(parsed, tracer, report)
        else:
            answers, _ = self._ask_fol(parsed, engine, tracer, report)
        return answers

    def query(
        self,
        query: Union[str, Query],
        engine: Optional[str] = None,
        *,
        deadline: Optional[float] = None,
        budget: Optional[int] = None,
        max_facts: Optional[int] = None,
        max_depth: Optional[int] = None,
        strict: bool = False,
        tracer=None,
        report=None,
    ) -> QueryResult:
        """Answer a query under resource limits; never hangs the caller.

        Like :meth:`ask`, but returns a :class:`QueryResult` carrying
        the governance outcome alongside the answers::

            result = kb.query("path: P[src => a]", deadline=0.2)
            if result.incomplete:
                print(f"interrupted by {result.limit}: {result.reason}")
            for answer in result:          # sound even when partial
                ...

        ``deadline`` is wall-clock seconds, ``budget`` caps evaluation
        steps (body evaluations / resolution attempts), ``max_facts``
        caps the derived model size, ``max_depth`` caps SLD recursion.
        With ``strict=True`` a tripped limit raises the
        :class:`~repro.core.errors.ResourceExhausted` subclass instead
        of degrading.  Governed runs always evaluate fresh — they never
        serve or populate the cached model, so a partial evaluation can
        never poison a later ungoverned answer.
        """
        governor: Optional[Governor] = None
        if strict or any(
            limit is not None for limit in (deadline, budget, max_facts, max_depth)
        ):
            governor = Governor(
                deadline=deadline,
                budget=budget,
                max_facts=max_facts,
                max_depth=max_depth,
                strict=strict,
            )
        engine = engine if engine is not None else self.default_engine
        if engine not in ENGINES:
            raise EngineError(f"unknown engine {engine!r}; choose from {ENGINES}")
        parsed = parse_query(query) if isinstance(query, str) else query
        if engine == "direct":
            answers, partial = self._ask_direct(parsed, tracer, report, governor)
        else:
            answers, partial = self._ask_fol(parsed, engine, tracer, report, governor)
        governance = governor.summary() if governor is not None else None
        if report is not None and governance is not None:
            report.governance = governance
        if partial is None:
            return QueryResult(
                answers=answers,
                complete=True,
                elapsed=governor.elapsed() if governor is not None else 0.0,
                steps=governor.steps if governor is not None else 0,
                governance=governance,
                report=report,
            )
        return QueryResult(
            answers=answers,
            complete=False,
            limit=partial.limit,
            reason=partial.reason,
            elapsed=partial.elapsed,
            steps=partial.steps,
            governance=governance,
            report=report if report is not None else partial.report,
        )

    def holds(self, query: Union[str, Query], engine: Optional[str] = None) -> bool:
        """True iff the query has at least one answer."""
        return bool(self.ask(query, engine))

    def explain(self, query: Union[str, Query]) -> list[str]:
        """Derivation trees (rendered) for every answer to the query.

        Uses the direct engine's :class:`~repro.engine.explain.Explainer`:
        each answer comes with one tree per query atom showing which
        clauses and extensional facts support it.
        """
        from repro.engine.explain import Explainer, format_derivation

        parsed = parse_query(query) if isinstance(query, str) else query
        explainer = Explainer(self.direct_engine())
        rendered: list[str] = []
        for answer, derivations in explainer.explain_query(parsed):
            header = ", ".join(
                f"{name} = {pretty_term(value)}" for name, value in answer.items()
            )
            body = "\n".join(
                format_derivation(d, self._program) for d in derivations
            )
            rendered.append((header + "\n" if header else "") + body)
        return rendered

    def _ask_direct(
        self, query: Query, tracer=None, report=None, governor=None
    ) -> tuple[list[Answer], Optional[PartialResult]]:
        if tracer is not None or report is not None or governor is not None:
            engine = DirectEngine(
                self._program, tracer=tracer, report=report, governor=governor
            )
        else:
            engine = self.direct_engine()
        result = engine.solve(query)
        partial: Optional[PartialResult] = None
        if isinstance(result, PartialResult):
            partial = result
            raw = result.value
        else:
            raw = result
            if engine.interrupted is not None:
                # Saturation degraded but the query over the partial
                # model finished without another tick: the answer set
                # is still incomplete and must say so.
                exc = engine.interrupted
                partial = PartialResult(
                    value=raw,
                    complete=False,
                    limit=exc.limit,
                    reason=str(exc),
                    elapsed=exc.elapsed or 0.0,
                    steps=exc.steps or 0,
                    report=report,
                    cause=exc,
                )
        answers = sorted(
            (Answer(tuple(sorted(a.items()))) for a in raw), key=repr
        )
        return answers, partial

    def _ask_fol(
        self, query: Query, engine: str, tracer=None, report=None, governor=None
    ) -> tuple[list[Answer], Optional[PartialResult]]:
        goals = query_to_fol(query)
        substitutions: Iterable[Substitution]
        partial: Optional[PartialResult] = None
        if engine in ("bottomup", "seminaive"):
            facts = self._fol_minimal_model(engine, tracer, report, governor)
            if isinstance(facts, PartialResult):
                partial = facts
                facts = facts.value
            from repro.engine.bottomup import answer_query_bottomup

            substitutions = answer_query_bottomup(goals, facts)
        elif engine == "sld":
            if self._uses_negation():
                from repro.core.errors import UnsupportedFeatureError

                raise UnsupportedFeatureError(
                    "the SLD engine does not support negation; use the "
                    "direct, bottomup or seminaive engine"
                )
            if governor is not None:
                result = SLDEngine(self._fol_program()).solve_all(
                    goals,
                    max_depth=self.sld_depth,
                    select=self.sld_select,
                    tracer=tracer,
                    governor=governor,
                )
                if isinstance(result, PartialResult):
                    partial = result
                    substitutions = result.value
                else:
                    substitutions = result
            else:
                substitutions = SLDEngine(self._fol_program()).solve(
                    goals,
                    max_depth=self.sld_depth,
                    select=self.sld_select,
                    tracer=tracer,
                )
        else:  # tabled
            if self._uses_negation():
                from repro.core.errors import UnsupportedFeatureError

                raise UnsupportedFeatureError(
                    "the tabled engine does not support negation; use the "
                    "direct, bottomup or seminaive engine"
                )
            result = TabledEngine(self._fol_program()).solve(
                goals, tracer=tracer, governor=governor
            )
            if isinstance(result, PartialResult):
                partial = result
                substitutions = result.value
            else:
                substitutions = result
        out = []
        for subst in substitutions:
            binding = tuple(
                sorted((name, fol_to_identity(value)) for name, value in subst.items())
            )
            out.append(Answer(binding))
        return sorted(set(out), key=repr), partial

    # ------------------------------------------------------------------
    # Engine plumbing
    # ------------------------------------------------------------------

    def direct_engine(self) -> DirectEngine:
        if self._direct is None:
            self._direct = DirectEngine(self._program)
        return self._direct

    @property
    def store(self) -> ObjectStore:
        """The saturated object store (the minimal model)."""
        engine = self.direct_engine()
        engine.saturate()
        return engine.store

    def objects(self) -> list[Term]:
        """Merged descriptions of every object in the minimal model."""
        return list(self.store.merged_descriptions())

    def _fol_program(self):
        if self._fol_cache is None:
            self._fol_cache = program_to_fol(self._program)
        return self._fol_cache

    def _uses_negation(self) -> bool:
        from repro.core.clauses import NegatedAtom

        return any(
            isinstance(atom, NegatedAtom)
            for clause in self._program.clauses
            for atom in clause.body
        )

    def _fol_minimal_model(self, engine: str, tracer=None, report=None, governor=None):
        observed = tracer is not None or report is not None or governor is not None
        cached = self._fol_facts.get(engine)
        if cached is None and not observed and self._incremental is not None:
            # A maintained model is warm (some transaction committed):
            # it equals the from-scratch fixpoint, so serve it instead
            # of recomputing.  Observed runs still recompute — the
            # report must describe an actual evaluation.
            cached = self._fol_facts[engine] = self._incremental.facts
            return cached
        if cached is None or observed:
            # An observed run recomputes even over a warm cache: the
            # report must describe the evaluation actually performed.
            if self._uses_negation():
                # Both bottom-up strategies route through the stratified
                # engine when the program negates (the positive
                # fixpoints refuse such rules).
                from repro.engine.negation import stratified_fixpoint

                cached = stratified_fixpoint(
                    self._fol_program(), tracer=tracer, report=report,
                    governor=governor,
                )
            elif engine == "bottomup":
                from repro.engine.bottomup import naive_fixpoint

                cached = naive_fixpoint(
                    self._fol_program(), tracer=tracer, report=report,
                    governor=governor,
                )
            else:
                from repro.engine.seminaive import seminaive_fixpoint

                cached = seminaive_fixpoint(
                    self._fol_program(), tracer=tracer, report=report,
                    governor=governor,
                )
            if governor is None:
                # Governed runs never populate the cache: a partial
                # model must not masquerade as the fixpoint later.
                self._fol_facts[engine] = cached
        return cached

    def to_fol_source(self, optimize: bool = False) -> str:
        """The translated first-order program, pretty-printed (with the
        Section 4 redundancy elimination when ``optimize=True``)."""
        from repro.fol.pretty import pretty_generalized, pretty_horn
        from repro.transform.clauses import program_to_generalized
        from repro.transform.optimize import optimize_program

        generalized = program_to_generalized(self._program)
        if optimize:
            generalized, _ = optimize_program(generalized)
        lines = [pretty_generalized(clause) for clause in generalized.clauses]
        lines.extend(pretty_horn(axiom) for axiom in generalized.axioms)
        return "\n".join(lines)


class Transaction:
    """A batched knowledge-base update with commit/rollback.

    Created by :meth:`KnowledgeBase.transaction`.  Inserts and retracts
    are buffered (and validated — fact clauses only, ground after
    translation) until :meth:`commit` applies the whole batch in one
    maintenance run; :meth:`rollback` discards it.  Used as a context
    manager, a clean exit commits and an exception rolls back.
    """

    def __init__(self, kb: KnowledgeBase) -> None:
        self._kb = kb
        self._inserts: list[DefiniteClause] = []
        self._retracts: list[DefiniteClause] = []
        self._closed = False
        #: The :class:`~repro.incremental.engine.MaintenanceStats` of
        #: the commit, for inspection after the ``with`` block.
        self.stats = None

    # -- buffering -----------------------------------------------------

    def insert(self, facts: Union[str, DefiniteClause]) -> int:
        """Buffer fact clauses for insertion; returns how many."""
        clauses = self._parse(facts)
        self._inserts.extend(clauses)
        return len(clauses)

    def retract(self, facts: Union[str, DefiniteClause]) -> int:
        """Buffer fact clauses for retraction; returns how many.
        Retracting a fact the program does not contain is ignored at
        commit (counted in the stats' ``retracts_ignored``)."""
        clauses = self._parse(facts)
        self._retracts.extend(clauses)
        return len(clauses)

    def _parse(self, facts: Union[str, DefiniteClause]) -> list[DefiniteClause]:
        self._ensure_open()
        if isinstance(facts, DefiniteClause):
            clauses = [facts]
        else:
            unit = parse_program(facts)
            if unit.program.subtypes:
                raise EngineError(
                    "subtype declarations change the type hierarchy; "
                    "use add_subtype, not a transaction"
                )
            clauses = list(unit.program.clauses)
        for clause in clauses:
            KnowledgeBase._fact_atoms(clause)  # validates: fact, ground
        return clauses

    # -- lifecycle -----------------------------------------------------

    def commit(self, tracer=None, report=None, governor=None):
        """Apply the buffered batch; returns the
        :class:`~repro.incremental.engine.MaintenanceStats` of the run
        (``tracer``/``report`` are the usual :mod:`repro.obs` hooks).

        Commit is **atomic**: the knowledge base is checkpointed first,
        and *any* failure mid-maintenance — an engine error, an injected
        fault, a ``governor`` limit tripping — restores program, version
        counter, caches, and the maintained model to the pre-commit
        state before the failure surfaces.  A non-strict governor limit
        degrades to a :class:`~repro.runtime.PartialResult` (with
        ``value=None``: no partial update is ever visible — the commit
        either happened or it did not).
        """
        self._ensure_open()
        self._closed = True
        checkpoint = self._kb._checkpoint()
        try:
            self.stats = self._kb._commit_update(
                self._inserts,
                self._retracts,
                tracer=tracer,
                report=report,
                governor=governor,
            )
        except (ResourceExhausted, RecursionError) as exc:
            self._kb._restore(checkpoint)
            from repro.runtime.governor import as_resource_error, degrade

            # Re-raises when ungoverned or strict; otherwise a
            # PartialResult naming the limit.  The update did NOT apply.
            self.stats = degrade(governor, as_resource_error(exc), None, report)
            return self.stats
        except BaseException:
            self._kb._restore(checkpoint)
            raise
        return self.stats

    def rollback(self) -> None:
        """Discard the buffered batch; the knowledge base is untouched."""
        self._ensure_open()
        self._closed = True
        self._inserts.clear()
        self._retracts.clear()

    def _ensure_open(self) -> None:
        if self._closed:
            raise EngineError("transaction already committed or rolled back")

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._closed:
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False
