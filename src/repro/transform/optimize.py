"""Static redundancy elimination for translated programs (Section 4).

The first-order program produced by the transformation "may have
certain redundancies, especially in typing predicates".  The paper
gives two elimination cases over generalized definite clauses, both
justified by the type axioms:

1. If ``tau1(a)`` and ``tau2(a)`` both appear in the head, or both in
   the body, of a generalized definite clause, and ``tau1 <= tau2``,
   then ``tau2(a)`` can be deleted.
2. If ``tau1(a)`` appears in the head and ``tau2(a)`` in the body of
   the same generalized definite clause, and ``tau2 <= tau1``, then
   ``tau1(a)`` in the head can be deleted.

(The paper writes the argument as a variable ``X``; the same reasoning
applies to any argument term, and its own worked example deletes
``object(Det)`` for the compound-free constant case, so we match on
arbitrary equal argument terms.)

A *type atom* here is a unary atom whose predicate is a known type
symbol of the source program — including ``object``; since every type
is below ``object``, case 1 also removes the "many redundant clauses
for object" the paper mentions.  If every head atom of a clause is
eliminated, the clause derives nothing not already derivable and is
dropped entirely.

Applying both cases to the translated noun-phrase program reproduces
the simplified ``common_np`` clause printed in the paper (tested in
``tests/transform/test_optimize.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import TypeHierarchy
from repro.fol.atoms import FAtom, FBodyAtom, GeneralizedClause
from repro.transform.clauses import GeneralizedProgram

__all__ = ["Elimination", "OptimizationReport", "optimize_clause", "optimize_program"]


@dataclass(frozen=True)
class Elimination:
    """One removed type atom: where it sat, what it was, and why."""

    zone: str  # "head" or "body"
    atom: str  # the deleted atom, pretty-printed
    reason: str  # the implying atom (or "duplicate of ...")

    def __str__(self) -> str:
        return f"{self.zone}: {self.atom} deleted ({self.reason})"


@dataclass
class OptimizationReport:
    """What the optimizer removed (for the E5 experiment and the
    observability layer's EXPLAIN output).

    Beyond the raw counts, ``eliminations`` records *which* type-
    predicate redundancies were removed and why, and
    :meth:`by_predicate` aggregates them — so a trace shows e.g. that
    the translation's ``object/1`` atoms dominate the waste.
    """

    head_atoms_deleted: int = 0
    body_atoms_deleted: int = 0
    clauses_dropped: int = 0
    duplicate_clauses_dropped: int = 0
    eliminations: list[Elimination] = field(default_factory=list)

    @property
    def atoms_deleted(self) -> int:
        return self.head_atoms_deleted + self.body_atoms_deleted

    def by_predicate(self) -> dict[str, int]:
        """Deleted-atom counts keyed by the type predicate removed."""
        out: dict[str, int] = {}
        for elimination in self.eliminations:
            pred = elimination.atom.split("(", 1)[0]
            out[pred] = out.get(pred, 0) + 1
        return dict(sorted(out.items(), key=lambda item: -item[1]))

    def summary(self) -> str:
        parts = [
            f"{self.atoms_deleted} type atoms deleted "
            f"({self.head_atoms_deleted} head, {self.body_atoms_deleted} body)",
            f"{self.clauses_dropped} clauses dropped",
            f"{self.duplicate_clauses_dropped} duplicates dropped",
        ]
        per_pred = self.by_predicate()
        if per_pred:
            top = ", ".join(f"{pred}: {count}" for pred, count in per_pred.items())
            parts.append(f"by predicate: {top}")
        return "; ".join(parts)

    def _record(self, zone: str, atom: FAtom, reason: str) -> None:
        from repro.fol.pretty import pretty_fatom

        self.eliminations.append(Elimination(zone, pretty_fatom(atom), reason))
        if zone == "head":
            self.head_atoms_deleted += 1
        else:
            self.body_atoms_deleted += 1


def _is_type_atom(atom: FBodyAtom, hierarchy: TypeHierarchy) -> bool:
    return isinstance(atom, FAtom) and len(atom.args) == 1 and atom.pred in hierarchy


def _eliminate_within_zone(
    atoms: list[FBodyAtom], hierarchy: TypeHierarchy, report: OptimizationReport, zone: str
) -> list[FBodyAtom]:
    """Case 1 within one zone (head or body): for equal arguments, keep
    only the minimal types; for equal types keep the first occurrence."""
    kept: list[FBodyAtom] = []
    for position, atom in enumerate(atoms):
        if not _is_type_atom(atom, hierarchy):
            kept.append(atom)
            continue
        assert isinstance(atom, FAtom)
        reason = None
        for other_position, other in enumerate(atoms):
            if other_position == position or not _is_type_atom(other, hierarchy):
                continue
            assert isinstance(other, FAtom)
            if other.args != atom.args:
                continue
            if other.pred == atom.pred:
                # Exact duplicate: keep only the first occurrence.
                if other_position < position:
                    reason = "duplicate"
                    break
            elif hierarchy.is_subtype(other.pred, atom.pred):
                # A strictly smaller type is present: atom is implied.
                reason = f"implied by {other.pred} <= {atom.pred} (case 1)"
                break
        if reason is not None:
            report._record(zone, atom, reason)
        else:
            kept.append(atom)
    return kept


def _eliminate_head_by_body(
    heads: list[FBodyAtom],
    body: list[FBodyAtom],
    hierarchy: TypeHierarchy,
    report: OptimizationReport,
) -> list[FBodyAtom]:
    """Case 2: drop head type atoms implied by body type atoms."""
    kept: list[FBodyAtom] = []
    for atom in heads:
        if not _is_type_atom(atom, hierarchy):
            kept.append(atom)
            continue
        assert isinstance(atom, FAtom)
        implied_by = None
        for other in body:
            if not _is_type_atom(other, hierarchy):
                continue
            assert isinstance(other, FAtom)
            if other.args == atom.args and hierarchy.is_subtype(other.pred, atom.pred):
                implied_by = other
                break
        if implied_by is not None:
            report._record(
                "head", atom, f"implied by body {implied_by.pred} <= {atom.pred} (case 2)"
            )
        else:
            kept.append(atom)
    return kept


def optimize_clause(
    clause: GeneralizedClause,
    hierarchy: TypeHierarchy,
    report: OptimizationReport | None = None,
) -> GeneralizedClause | None:
    """Apply both elimination cases to one generalized clause.

    Returns the simplified clause, or ``None`` when every head atom was
    redundant (the clause derives nothing new).
    """
    report = report if report is not None else OptimizationReport()
    heads: list[FBodyAtom] = list(clause.heads)
    body: list[FBodyAtom] = list(clause.body)
    heads = _eliminate_within_zone(heads, hierarchy, report, "head")
    body = _eliminate_within_zone(body, hierarchy, report, "body")
    heads = _eliminate_head_by_body(heads, body, hierarchy, report)
    if not heads:
        report.clauses_dropped += 1
        return None
    fatom_heads = tuple(atom for atom in heads if isinstance(atom, FAtom))
    return GeneralizedClause(fatom_heads, tuple(body))


def optimize_program(
    program: GeneralizedProgram,
    tracer=None,
) -> tuple[GeneralizedProgram, OptimizationReport]:
    """Optimize every clause and drop exact duplicate clauses.

    The type axioms are left untouched: they are what justifies the
    deletions, so they must survive into the final program.

    With a ``tracer`` (:class:`repro.obs.Tracer`) the pass runs inside a
    ``transform.optimize`` span whose counters record what was removed,
    per predicate.
    """
    report = OptimizationReport()
    span = (
        tracer.start("transform.optimize", clauses=len(program.clauses))
        if tracer is not None
        else None
    )
    seen: set[GeneralizedClause] = set()
    optimized: list[GeneralizedClause] = []
    for clause in program.clauses:
        simplified = optimize_clause(clause, program.hierarchy, report)
        if simplified is None:
            continue
        if simplified in seen:
            report.duplicate_clauses_dropped += 1
            continue
        seen.add(simplified)
        optimized.append(simplified)
    if span is not None:
        span.count("head_atoms_deleted", report.head_atoms_deleted)
        span.count("body_atoms_deleted", report.body_atoms_deleted)
        span.count("clauses_dropped", report.clauses_dropped)
        span.count("duplicate_clauses_dropped", report.duplicate_clauses_dropped)
        for pred, count in report.by_predicate().items():
            span.count(f"deleted.{pred}", count)
        tracer.finish(span)
    return (
        GeneralizedProgram(tuple(optimized), program.axioms, program.hierarchy),
        report,
    )
