"""Clause- and program-level transformation (Sections 3.3 and 4).

A C-logic definite clause translates to a *generalized definite
clause*: the head atom's conjunction ``head*`` becomes the multi-head,
the concatenation of the body atoms' conjunctions becomes the body.  A
program of objects additionally contributes:

* one first-order clause ``tau2(X) :- tau1(X)`` per subtype declaration
  ``tau1 < tau2``;
* one *type axiom* ``object(X) :- tau(X)`` per type symbol ``tau``
  occurring in the program (only finitely many occur, so the axiom set
  is finite even though the type poset may be infinite).

Splitting each generalized clause into one Horn clause per head atom
yields an ordinary first-order logic program, on which "model-theoretic
results in deductive databases and logic programming can be readily
applied" and "known query evaluation techniques, including both
bottom-up and top-down methods, can be used".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.clauses import DefiniteClause, NegatedAtom, Program, Query
from repro.core.errors import TransformError
from repro.core.terms import OBJECT
from repro.core.types import SubtypeDecl, TypeHierarchy
from repro.fol.atoms import (
    FAtom,
    FBodyAtom,
    FOLProgram,
    GeneralizedClause,
    HornClause,
    NegAtom,
)
from repro.fol.terms import FVar
from repro.transform.atoms import body_atom_to_fol, dedupe_atoms

__all__ = [
    "GeneralizedProgram",
    "clause_to_generalized",
    "query_to_fol",
    "subtype_axiom",
    "object_axioms",
    "type_axioms",
    "program_to_generalized",
    "program_to_fol",
    "split_program",
]

#: The canonical variable used in type axioms.
_AXIOM_VAR = FVar("X")


@dataclass(frozen=True, slots=True)
class GeneralizedProgram:
    """The intermediate *generalized logic program* of Section 4:
    generalized definite clauses plus the (single-head) type axioms,
    with the source hierarchy kept for optimization."""

    clauses: tuple[GeneralizedClause, ...]
    axioms: tuple[HornClause, ...]
    hierarchy: TypeHierarchy

    def split(self) -> FOLProgram:
        """The final first-order logic program (one Horn clause per head
        atom of each generalized clause, plus the axioms)."""
        horn: list[HornClause] = []
        for clause in self.clauses:
            horn.extend(clause.split())
        horn.extend(self.axioms)
        return FOLProgram(tuple(horn))

    def atom_count(self) -> int:
        """Total number of atoms, a size measure used by the
        redundancy-elimination experiment (E5)."""
        total = 0
        for clause in self.clauses:
            total += len(clause.heads) + len(clause.body)
        for axiom in self.axioms:
            total += 1 + len(axiom.body)
        return total


def clause_to_generalized(
    clause: DefiniteClause,
    dedupe: bool = True,
    aux_sink: list[GeneralizedClause] | None = None,
) -> GeneralizedClause:
    """Translate one definite clause of objects.

    With ``dedupe=True`` (default) repeated conjuncts within the head
    and within the body collapse to their first occurrence — this
    matches the paper's listing of the translated noun-phrase program,
    which writes each typing atom once per zone.  Pass ``dedupe=False``
    to keep the raw conjunctions.

    A negated body atom whose translation has a single conjunct becomes
    a first-order :class:`~repro.fol.atoms.NegAtom`; one with several
    conjuncts needs a Lloyd–Topor auxiliary predicate (``naf_auxN``)
    whose defining clause is appended to ``aux_sink`` — supply one (or
    use :func:`program_to_generalized`, which does).
    """
    from repro.core.clauses import atom_variables as c_atom_variables

    head_atoms = body_atom_to_fol(clause.head)
    heads: list[FAtom] = [atom for atom in head_atoms if isinstance(atom, FAtom)]
    body: list[FBodyAtom] = []
    for index, atom in enumerate(clause.body):
        if isinstance(atom, NegatedAtom):
            # Variables local to the negated atom are existentially
            # quantified inside the negation; only those shared with
            # the rest of the clause surface in the auxiliary head.
            outer: set[str] = c_atom_variables(clause.head)
            for other_index, other in enumerate(clause.body):
                if other_index != index:
                    outer |= c_atom_variables(other)
            body.append(_translate_negated(atom, aux_sink, outer))
        else:
            body.extend(body_atom_to_fol(atom))
    if dedupe:
        deduped_heads = dedupe_atoms(list(heads))
        heads = [atom for atom in deduped_heads if isinstance(atom, FAtom)]
        body = dedupe_atoms(body)
    return GeneralizedClause(tuple(heads), tuple(body))


def _translate_negated(
    atom: NegatedAtom,
    aux_sink: list[GeneralizedClause] | None,
    outer_vars: set[str],
) -> NegAtom:
    from repro.core.clauses import atom_variables
    from repro.transform.atoms import atom_to_fol

    conjuncts = atom_to_fol(atom.atom)
    shared = sorted(atom_variables(atom) & outer_vars)
    local = atom_variables(atom) - outer_vars
    if len(conjuncts) == 1 and not local:
        return NegAtom(conjuncts[0])
    if aux_sink is None:
        raise TransformError(
            "negating a complex description requires an auxiliary clause; "
            "translate through program_to_generalized (or pass aux_sink)"
        )
    name = f"naf_aux{len(aux_sink) + 1}"
    if shared:
        head = FAtom(name, tuple(FVar(v) for v in shared))
    else:
        from repro.fol.terms import FConst

        head = FAtom(name, (FConst("true"),))
    aux_sink.append(GeneralizedClause((head,), tuple(conjuncts)))
    return NegAtom(head)


def query_to_fol(query: Query, dedupe: bool = True) -> tuple[FBodyAtom, ...]:
    """Translate a query body into a first-order goal list.

    Negated query atoms must translate to a single conjunct (a plain
    typed term or predicate atom); for a negated complex description,
    name it with a helper rule in the program instead.
    """
    from repro.core.clauses import atom_variables as c_atom_variables

    goals: list[FBodyAtom] = []
    for index, atom in enumerate(query.body):
        if isinstance(atom, NegatedAtom):
            outer: set[str] = set()
            for other_index, other in enumerate(query.body):
                if other_index != index:
                    outer |= c_atom_variables(other)
            goals.append(_translate_negated(atom, None, outer))
        else:
            goals.extend(body_atom_to_fol(atom))
    if dedupe:
        goals = dedupe_atoms(goals)
    return tuple(goals)


def subtype_axiom(decl: SubtypeDecl) -> HornClause:
    """``tau2(X) :- tau1(X)`` for the declaration ``tau1 < tau2``."""
    return HornClause(
        FAtom(decl.sup, (_AXIOM_VAR,)), (FAtom(decl.sub, (_AXIOM_VAR,)),)
    )


def object_axioms(type_symbols: Iterable[str]) -> list[HornClause]:
    """``object(X) :- tau(X)`` for every non-``object`` symbol, sorted
    for determinism."""
    return [
        HornClause(FAtom(OBJECT, (_AXIOM_VAR,)), (FAtom(symbol, (_AXIOM_VAR,)),))
        for symbol in sorted(set(type_symbols))
        if symbol != OBJECT
    ]


def type_axioms(program: Program) -> list[HornClause]:
    """All type axioms of a program: subtype clauses then object axioms."""
    axioms = [subtype_axiom(decl) for decl in program.subtypes]
    axioms.extend(object_axioms(program.type_symbols()))
    return axioms


def program_to_generalized(program: Program, dedupe: bool = True) -> GeneralizedProgram:
    """Translate a program of objects into a generalized logic program.

    Negated complex descriptions produce Lloyd–Topor auxiliary clauses,
    appended after the program's own clauses.
    """
    aux: list[GeneralizedClause] = []
    clauses = tuple(
        clause_to_generalized(clause, dedupe, aux_sink=aux)
        for clause in program.clauses
    )
    return GeneralizedProgram(
        clauses + tuple(aux), tuple(type_axioms(program)), program.hierarchy()
    )


def program_to_fol(program: Program, dedupe: bool = True) -> FOLProgram:
    """The full pipeline: program of objects -> first-order logic program."""
    return program_to_generalized(program, dedupe).split()


def split_program(clauses: Iterable[GeneralizedClause]) -> FOLProgram:
    """Split loose generalized clauses (without axioms) into Horn form."""
    horn: list[HornClause] = []
    for clause in clauses:
        horn.extend(clause.split())
    return FOLProgram(tuple(horn))
