"""Back-translation: from derived first-order facts to object descriptions.

The transformation scatters one complex object over many first-order
atoms (a unary type atom plus one binary atom per labelled value).
After bottom-up evaluation of the translated program we often want the
objects back — e.g. to present answers in the paper's notation, or to
compare the minimal model of a program of objects with the minimal
model of its translation (experiment E10).

:func:`facts_to_descriptions` partitions a set of ground FOL atoms by
object identity and reassembles one maximal description per identity,
using collections for multi-valued labels.  The partition needs to know
which unary predicates are *types* and which binary predicates are
*labels*; both are supplied explicitly (normally from
``Program.type_symbols()`` and ``Program.labels()``) because L* cannot
distinguish them from ordinary predicates by itself.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.terms import (
    BaseTerm,
    Collection,
    Const,
    Func,
    LabelSpec,
    LTerm,
    OBJECT,
    Term,
    Var,
)
from repro.fol.atoms import FAtom
from repro.fol.terms import FTerm
from repro.transform.terms import fol_to_identity

__all__ = ["facts_to_descriptions", "retype_identity"]


def retype_identity(identity: BaseTerm, types: set[str]) -> BaseTerm:
    """Annotate an identity with its most informative derived type.

    When several incomparable types hold, the lexicographically first
    non-``object`` one is chosen for the annotation (the full type set
    is returned separately by :func:`facts_to_descriptions`).
    """
    informative = sorted(t for t in types if t != OBJECT)
    type_name = informative[0] if informative else OBJECT
    if isinstance(identity, Var):
        return Var(identity.name, type_name)
    if isinstance(identity, Const):
        return Const(identity.value, type_name)
    assert isinstance(identity, Func)
    return Func(identity.functor, identity.args, type_name)


def facts_to_descriptions(
    atoms: Iterable[FAtom],
    type_symbols: set[str],
    labels: set[str],
) -> dict[Term, tuple[frozenset[str], Term]]:
    """Group ground FOL atoms into per-identity object descriptions.

    Returns a mapping from the (untyped) identity term to a pair
    ``(types, description)`` where ``types`` is the set of derived type
    symbols and ``description`` is the merged labelled term (or the bare
    identity if the object has no labelled values).  Atoms that are
    neither type atoms nor label atoms are ignored — they are ordinary
    predicate facts, not object descriptions.
    """
    type_map: dict[FTerm, set[str]] = {}
    label_map: dict[FTerm, dict[str, list[FTerm]]] = {}

    def touch(identity: FTerm) -> None:
        type_map.setdefault(identity, set())
        label_map.setdefault(identity, {})

    for atom in atoms:
        if len(atom.args) == 1 and atom.pred in type_symbols:
            touch(atom.args[0])
            type_map[atom.args[0]].add(atom.pred)
        elif len(atom.args) == 2 and atom.pred in labels:
            host, value = atom.args
            touch(host)
            values = label_map[host].setdefault(atom.pred, [])
            if value not in values:
                values.append(value)

    out: dict[Term, tuple[frozenset[str], Term]] = {}
    for fidentity in type_map:
        identity = fol_to_identity(fidentity)
        assert isinstance(identity, (Var, Const, Func))
        types = frozenset(type_map[fidentity])
        base = retype_identity(identity, set(types))
        label_values = label_map[fidentity]
        if not label_values:
            out[identity] = (types, base)
            continue
        specs = []
        for label in sorted(label_values):
            values = [fol_to_identity(v) for v in label_values[label]]
            if len(values) == 1:
                specs.append(LabelSpec(label, values[0]))
            else:
                specs.append(LabelSpec(label, Collection(tuple(values))))
        out[identity] = (types, LTerm(base, tuple(specs)))
    return out
