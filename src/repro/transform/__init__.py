"""The Theorem-1 transformation into first-order logic (Section 3.3)
and the Section 4 program pipeline (generalized clauses, type axioms,
splitting, redundancy elimination, back-translation)."""

from repro.transform.atoms import atom_to_fol, body_atom_to_fol, dedupe_atoms, term_atom_conjuncts
from repro.transform.backmap import facts_to_descriptions, retype_identity
from repro.transform.clauses import (
    GeneralizedProgram,
    clause_to_generalized,
    object_axioms,
    program_to_fol,
    program_to_generalized,
    query_to_fol,
    split_program,
    subtype_axiom,
    type_axioms,
)
from repro.transform.optimize import OptimizationReport, optimize_clause, optimize_program
from repro.transform.terms import fol_to_identity, term_to_fol

__all__ = [
    "GeneralizedProgram",
    "OptimizationReport",
    "atom_to_fol",
    "body_atom_to_fol",
    "clause_to_generalized",
    "dedupe_atoms",
    "facts_to_descriptions",
    "fol_to_identity",
    "object_axioms",
    "optimize_clause",
    "optimize_program",
    "program_to_fol",
    "program_to_generalized",
    "query_to_fol",
    "retype_identity",
    "split_program",
    "subtype_axiom",
    "term_atom_conjuncts",
    "term_to_fol",
    "type_axioms",
]
