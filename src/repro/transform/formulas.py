"""Compositional translation of *general* formulas into first-order logic.

Theorem 1 covers atomic formulas; the paper notes that "formulas are
freely generated from atomic formulas by logical connectives", so the
full translation is the compositional closure: connectives and
quantifiers map to themselves, atomic formulas map to the conjunction
``alpha*``.  This module implements that closure over the
:mod:`repro.core.formulas` AST, producing a first-order formula AST
(:class:`FolFormula`), plus a satisfaction checker for the target so
the equivalence

    M |= phi[s]   iff   M* |= phi*[s]

is testable for arbitrary formulas (see
``tests/transform/test_formulas.py`` and the property suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.errors import TransformError
from repro.core.formulas import (
    And,
    Exists,
    ForAll,
    Formula,
    Implies,
    Not,
    Or,
    PredAtom,
    TermAtom,
)
from repro.fol.atoms import FAtom
from repro.semantics.satisfaction import satisfies_fatom
from repro.semantics.structure import Assignment, Structure
from repro.transform.atoms import atom_to_fol

__all__ = [
    "FolAtomF",
    "FolNot",
    "FolAnd",
    "FolOr",
    "FolImplies",
    "FolForAll",
    "FolExists",
    "FolFormula",
    "formula_to_fol",
    "satisfies_fol_formula",
]


@dataclass(frozen=True, slots=True)
class FolAtomF:
    atom: FAtom


@dataclass(frozen=True, slots=True)
class FolNot:
    operand: "FolFormula"


@dataclass(frozen=True, slots=True)
class FolAnd:
    left: "FolFormula"
    right: "FolFormula"


@dataclass(frozen=True, slots=True)
class FolOr:
    left: "FolFormula"
    right: "FolFormula"


@dataclass(frozen=True, slots=True)
class FolImplies:
    antecedent: "FolFormula"
    consequent: "FolFormula"


@dataclass(frozen=True, slots=True)
class FolForAll:
    variable: str
    body: "FolFormula"


@dataclass(frozen=True, slots=True)
class FolExists:
    variable: str
    body: "FolFormula"


FolFormula = Union[FolAtomF, FolNot, FolAnd, FolOr, FolImplies, FolForAll, FolExists]


def _conjoin(atoms: list[FAtom]) -> FolFormula:
    result: FolFormula = FolAtomF(atoms[-1])
    for atom in reversed(atoms[:-1]):
        result = FolAnd(FolAtomF(atom), result)
    return result


def formula_to_fol(formula: Formula) -> FolFormula:
    """``phi -> phi*``: atomic formulas become their conjunction, the
    connective structure is preserved."""
    if isinstance(formula, (TermAtom, PredAtom)):
        return _conjoin(atom_to_fol(formula))
    if isinstance(formula, Not):
        return FolNot(formula_to_fol(formula.operand))
    if isinstance(formula, And):
        return FolAnd(formula_to_fol(formula.left), formula_to_fol(formula.right))
    if isinstance(formula, Or):
        return FolOr(formula_to_fol(formula.left), formula_to_fol(formula.right))
    if isinstance(formula, Implies):
        return FolImplies(
            formula_to_fol(formula.antecedent), formula_to_fol(formula.consequent)
        )
    if isinstance(formula, ForAll):
        return FolForAll(formula.variable, formula_to_fol(formula.body))
    if isinstance(formula, Exists):
        return FolExists(formula.variable, formula_to_fol(formula.body))
    raise TransformError(f"not a formula: {formula!r}")


def satisfies_fol_formula(
    formula: FolFormula, structure: Structure, assignment: Assignment
) -> bool:
    """``M* |= phi*[s]`` over the finite structure."""
    if isinstance(formula, FolAtomF):
        return satisfies_fatom(formula.atom, structure, assignment)
    if isinstance(formula, FolNot):
        return not satisfies_fol_formula(formula.operand, structure, assignment)
    if isinstance(formula, FolAnd):
        return satisfies_fol_formula(
            formula.left, structure, assignment
        ) and satisfies_fol_formula(formula.right, structure, assignment)
    if isinstance(formula, FolOr):
        return satisfies_fol_formula(
            formula.left, structure, assignment
        ) or satisfies_fol_formula(formula.right, structure, assignment)
    if isinstance(formula, FolImplies):
        return (
            not satisfies_fol_formula(formula.antecedent, structure, assignment)
        ) or satisfies_fol_formula(formula.consequent, structure, assignment)
    if isinstance(formula, (FolForAll, FolExists)):
        extended = dict(assignment)
        results = []
        for element in structure.domain:
            extended[formula.variable] = element
            results.append(satisfies_fol_formula(formula.body, structure, extended))
        return all(results) if isinstance(formula, FolForAll) else any(results)
    raise TransformError(f"not a FOL formula: {formula!r}")
