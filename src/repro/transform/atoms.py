"""Atomic-formula translation ``alpha -> alpha*`` (Theorem 1, Section 3.3).

Every atomic formula of a language of objects becomes a *conjunction*
of first-order atomic formulas:

* ``(tau : X)*              = tau(X)``
* ``(tau : c)*              = tau(c)``
* ``(tau : f(t1,...,tn))*   = tau(f(t1',...,tn')) & t1* & ... & tn*``
* ``(t[l1 => e1,...])*      = t* & a1* & ... & an*`` where for each
  ``ei``: if a term, ``ai* = ei* & li(t', ei')``; if a collection
  ``{u1,...,uk}``, ``ai* = u1* & li(t', u1') & ... & uk* & li(t', uk')``
* ``(p(t1,...,tn))*         = t1* & ... & tn* & p(t1',...,tn')``

We return the conjunction as a list of :class:`~repro.fol.atoms.FAtom`
in exactly the paper's order (host assertion first; per labelled value,
the value's own assertions before the label atom), which makes the
reproduction of Example 2 an equality test on lists.  An optional
de-duplication keeps the first occurrence of repeated conjuncts — the
paper itself prints ``object(N)`` twice in the raw ``common_np``
translation, so deduplication is off by default and the redundancy is
removed later by :mod:`repro.transform.optimize`.
"""

from __future__ import annotations

from repro.core.clauses import BodyAtom, BuiltinAtom
from repro.core.errors import TransformError
from repro.core.formulas import Atom, PredAtom, TermAtom
from repro.core.terms import Const, Func, LTerm, Term, Var
from repro.fol.atoms import FAtom, FBuiltin
from repro.transform.terms import term_to_fol

__all__ = ["atom_to_fol", "term_atom_conjuncts", "body_atom_to_fol", "dedupe_atoms"]


def term_atom_conjuncts(term: Term) -> list[FAtom]:
    """The conjuncts of ``(t)*`` for a term used as an atomic formula."""
    out: list[FAtom] = []
    _translate_term_atom(term, out)
    return out


def _translate_term_atom(term: Term, out: list[FAtom]) -> None:
    if isinstance(term, (Var, Const)):
        out.append(FAtom(term.type, (term_to_fol(term),)))
        return
    if isinstance(term, Func):
        out.append(FAtom(term.type, (term_to_fol(term),)))
        for arg in term.args:
            _translate_term_atom(arg, out)
        return
    if isinstance(term, LTerm):
        _translate_term_atom(term.base, out)
        host = term_to_fol(term.base)
        for spec in term.specs:
            for value in spec.value_terms():
                _translate_term_atom(value, out)
                out.append(FAtom(spec.label, (host, term_to_fol(value))))
        return
    raise TransformError(f"not a term: {term!r}")


def atom_to_fol(atom: Atom) -> list[FAtom]:
    """The conjunction ``alpha*`` for an atomic formula ``alpha``."""
    if isinstance(atom, TermAtom):
        return term_atom_conjuncts(atom.term)
    if isinstance(atom, PredAtom):
        out: list[FAtom] = []
        for arg in atom.args:
            _translate_term_atom(arg, out)
        out.append(FAtom(atom.pred, tuple(term_to_fol(arg) for arg in atom.args)))
        return out
    raise TransformError(f"not an atomic formula: {atom!r}")


def body_atom_to_fol(atom: BodyAtom) -> list[FAtom | FBuiltin]:
    """Translate a body atom; builtins pass through with translated
    arguments (they are evaluation devices, not object descriptions, so
    their arguments contribute no type conjuncts).

    Negated atoms are *not* handled here: negating a description means
    negating its whole conjunction, which needs a Lloyd–Topor auxiliary
    clause — clause-level context that
    :func:`repro.transform.clauses.clause_to_generalized` provides.
    """
    from repro.core.clauses import NegatedAtom

    if isinstance(atom, NegatedAtom):
        raise TransformError(
            "negated atoms are translated at the clause level "
            "(clause_to_generalized / program_to_generalized)"
        )
    if isinstance(atom, BuiltinAtom):
        return [FBuiltin(atom.op, tuple(term_to_fol(arg) for arg in atom.args))]
    return list(atom_to_fol(atom))


def dedupe_atoms(atoms: list[FAtom | FBuiltin]) -> list[FAtom | FBuiltin]:
    """Remove duplicate *pure* atoms, keeping first occurrences.

    Builtins are never deduplicated (their re-execution order matters
    for variable binding).
    """
    seen: set[FAtom] = set()
    out: list[FAtom | FBuiltin] = []
    for atom in atoms:
        if isinstance(atom, FBuiltin):
            out.append(atom)
            continue
        if atom in seen:
            continue
        seen.add(atom)
        out.append(atom)
    return out
