"""Term translation ``t -> t'`` of the Theorem-1 transformation.

Section 3.3 defines, for each term ``t`` of a language of objects, a
first-order term ``t'``:

* ``(tau : X)' = X``
* ``(tau : c)' = c``
* ``(tau : f(t1, ..., tn))' = f(t1', ..., tn')``
* ``(t[l1 => e1, ..., ln => en])' = t'``

The translation forgets the type annotation and the labels: they turn
into conjuncts of the *formula* translation (:mod:`repro.transform.atoms`),
while ``t'`` is the pure identity tree.  The paper proves
``s_M(t) = s_{M*}(t')`` for every structure and assignment; our
property tests check this through :mod:`repro.semantics`.
"""

from __future__ import annotations

from repro.core.errors import TransformError
from repro.core.terms import Const, Func, LTerm, Term, Var
from repro.fol.terms import FApp, FConst, FTerm, FVar

__all__ = ["term_to_fol", "fol_to_identity"]


def term_to_fol(term: Term) -> FTerm:
    """The individual term ``t'`` of L* corresponding to ``t``."""
    if isinstance(term, Var):
        return FVar(term.name)
    if isinstance(term, Const):
        return FConst(term.value)
    if isinstance(term, Func):
        return FApp(term.functor, tuple(term_to_fol(arg) for arg in term.args))
    if isinstance(term, LTerm):
        return term_to_fol(term.base)
    raise TransformError(f"not a term: {term!r}")


def fol_to_identity(fterm: FTerm) -> Term:
    """The inverse embedding: an FOL term read back as an (untyped)
    C-logic identity term.

    Total and injective on the image of :func:`term_to_fol` restricted
    to label-free terms, so ``fol_to_identity(term_to_fol(t)) == t`` for
    every untyped, label-free ``t`` (tested).  Types and labels are not
    recoverable from ``t'`` alone — they live in the unary/binary
    predicates of the translated formula; :mod:`repro.transform.backmap`
    reassembles full descriptions from those.
    """
    if isinstance(fterm, FVar):
        return Var(fterm.name)
    if isinstance(fterm, FConst):
        return Const(fterm.value)
    if isinstance(fterm, FApp):
        return Func(fterm.functor, tuple(fol_to_identity(arg) for arg in fterm.args))
    raise TransformError(f"not an FOL term: {fterm!r}")
