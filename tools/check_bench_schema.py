#!/usr/bin/env python3
"""Validate benchmark JSON artifacts against their expected schemas.

Hand-rolled (no jsonschema dependency).  Dispatches on the top-level
``benchmark`` field: ``join_core`` payloads (from
``benchmarks/bench_join_core.py``) get workload + engine-agreement row
checks; ``incremental`` payloads (from
``benchmarks/bench_incremental.py``) get maintenance-vs-recompute row
checks.  Used by the CI benchmark smoke job; also runnable by hand::

    python tools/check_bench_schema.py [BENCH_join_core.json ...]

With no arguments it checks the repo-root ``BENCH_join_core.json``.
Exits non-zero with one line per violation.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

EXPECTED_SCHEMA_VERSION = 1
KNOWN_ENGINES = {"direct", "bottomup", "seminaive", "sld", "tabled"}


def _check(errors: list[str], condition: bool, message: str) -> None:
    if not condition:
        errors.append(message)


def check_workload(
    row: object,
    where: str,
    errors: list[str],
    count_keys: tuple[str, str] = ("legacy_facts", "new_facts"),
    disagreement: str = "legacy and optimized cores disagreed",
) -> None:
    if not isinstance(row, dict):
        errors.append(f"{where}: expected an object, got {type(row).__name__}")
        return
    _check(errors, isinstance(row.get("name"), str) and row.get("name"),
           f"{where}: 'name' must be a non-empty string")
    _check(errors, isinstance(row.get("size"), int) and not isinstance(row.get("size"), bool)
           and row.get("size", 0) > 0,
           f"{where}: 'size' must be a positive integer")
    for key in ("before_ms", "after_ms", "speedup"):
        value = row.get(key)
        _check(errors, isinstance(value, (int, float)) and not isinstance(value, bool)
               and value > 0,
               f"{where}: '{key}' must be a positive number")
    checks = row.get("checks")
    if not isinstance(checks, dict):
        errors.append(f"{where}: 'checks' must be an object")
        return
    for key in count_keys:
        _check(errors, isinstance(checks.get(key), int),
               f"{where}: checks.'{key}' must be an integer")
    _check(errors, checks.get("counts_equal") is True,
           f"{where}: checks.counts_equal must be true ({disagreement})")


def check_agreement(row: object, where: str, errors: list[str]) -> None:
    if not isinstance(row, dict):
        errors.append(f"{where}: expected an object, got {type(row).__name__}")
        return
    _check(errors, isinstance(row.get("workload"), str) and row.get("workload"),
           f"{where}: 'workload' must be a non-empty string")
    _check(errors, isinstance(row.get("size"), int) and row.get("size", 0) > 0,
           f"{where}: 'size' must be a positive integer")
    engines = row.get("engines")
    if not isinstance(engines, dict) or not engines:
        errors.append(f"{where}: 'engines' must be a non-empty object")
    else:
        for engine, count in engines.items():
            _check(errors, engine in KNOWN_ENGINES,
                   f"{where}: unknown engine {engine!r}")
            _check(errors, isinstance(count, int) and count >= 0,
                   f"{where}: engine {engine!r} answer count must be a "
                   "non-negative integer")
    excluded = row.get("engines_excluded")
    if not isinstance(excluded, dict):
        errors.append(f"{where}: 'engines_excluded' must be an object")
    else:
        for engine, reason in excluded.items():
            _check(errors, engine in KNOWN_ENGINES,
                   f"{where}: excluded engine {engine!r} is unknown")
            _check(errors, isinstance(reason, str) and reason,
                   f"{where}: exclusion reason for {engine!r} must be a "
                   "non-empty string")
    _check(errors, row.get("identical") is True,
           f"{where}: 'identical' must be true (engines disagreed)")


def _check_common_top_level(payload: dict, errors: list[str]) -> None:
    _check(errors, payload.get("schema_version") == EXPECTED_SCHEMA_VERSION,
           f"top level: 'schema_version' must be {EXPECTED_SCHEMA_VERSION}")
    _check(errors, isinstance(payload.get("smoke"), bool),
           "top level: 'smoke' must be a boolean")
    _check(errors, isinstance(payload.get("python"), str),
           "top level: 'python' must be a string")


def check_join_core_payload(payload: dict) -> list[str]:
    errors: list[str] = []
    _check_common_top_level(payload, errors)
    workloads = payload.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        errors.append("top level: 'workloads' must be a non-empty array")
    else:
        for index, row in enumerate(workloads):
            check_workload(row, f"workloads[{index}]", errors)
    agreement = payload.get("agreement")
    if not isinstance(agreement, list) or not agreement:
        errors.append("top level: 'agreement' must be a non-empty array")
    else:
        for index, row in enumerate(agreement):
            check_agreement(row, f"agreement[{index}]", errors)
    return errors


def check_incremental_payload(payload: dict) -> list[str]:
    errors: list[str] = []
    _check_common_top_level(payload, errors)
    workloads = payload.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        errors.append("top level: 'workloads' must be a non-empty array")
    else:
        for index, row in enumerate(workloads):
            check_workload(
                row, f"workloads[{index}]", errors,
                count_keys=("maintained_facts", "recomputed_facts"),
                disagreement="maintained model diverged from the recomputed fixpoint",
            )
    return errors


CHECKERS = {
    "join_core": check_join_core_payload,
    "incremental": check_incremental_payload,
}


def check_payload(payload: object) -> list[str]:
    if not isinstance(payload, dict):
        return ["top level: expected a JSON object"]
    checker = CHECKERS.get(payload.get("benchmark"))
    if checker is None:
        known = ", ".join(sorted(CHECKERS))
        return [f"top level: 'benchmark' must be one of: {known}"]
    return checker(payload)


def check_file(path: Path) -> int:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"check_bench_schema: {path} not found", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"check_bench_schema: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    errors = check_payload(payload)
    if errors:
        for error in errors:
            print(f"check_bench_schema: {path.name}: {error}", file=sys.stderr)
        return 1
    summary = f"{len(payload['workloads'])} workload rows"
    if "agreement" in payload:
        summary += f", {len(payload['agreement'])} agreement rows"
    print(f"check_bench_schema: {path.name} OK — {summary}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    paths = [Path(arg) for arg in argv] or [REPO_ROOT / "BENCH_join_core.json"]
    return max(check_file(path) for path in paths)


if __name__ == "__main__":
    sys.exit(main())
