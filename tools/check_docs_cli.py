#!/usr/bin/env python3
"""Fail if a documented ``repro ...`` command is not a real subcommand.

Scans fenced code blocks in the given markdown files (default:
docs/EVALUATION.md, docs/ARCHITECTURE.md, README.md) for invocations of
the CLI — either ``repro SUB ...`` or ``python -m repro SUB ...`` — and
checks every subcommand against :data:`repro.cli.SUBCOMMANDS`, so the
docs cannot drift from what the CLI actually dispatches.  Repository
file paths mentioned as the command's first argument must exist, too.

Run from the repository root::

    python tools/check_docs_cli.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import SUBCOMMANDS  # noqa: E402

DEFAULT_DOCS = ["docs/EVALUATION.md", "docs/ARCHITECTURE.md", "README.md"]

ENV_ASSIGNMENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*=\S*")


def extract_invocation(line: str) -> list[str] | None:
    """The argv after ``repro`` if the line invokes the CLI, else None.

    Recognizes the documented shell idioms: optional leading environment
    assignments (``PYTHONPATH=src``), then either ``repro ...`` or
    ``python -m repro ...``.
    """
    tokens = line.split()
    index = 0
    while index < len(tokens) and ENV_ASSIGNMENT.fullmatch(tokens[index]):
        index += 1
    if tokens[index : index + 3] == ["python", "-m", "repro"]:
        return tokens[index + 3 :]
    if tokens[index : index + 1] == ["repro"]:
        return tokens[index + 1 :]
    return None


def fenced_blocks(text: str):
    """Yield (start_line, block_text) for every ``` fence."""
    lines = text.splitlines()
    inside = False
    start = 0
    block: list[str] = []
    for number, line in enumerate(lines, start=1):
        if line.strip().startswith("```"):
            if inside:
                yield start, "\n".join(block)
                block = []
            inside = not inside
            start = number + 1
        elif inside:
            block.append(line)


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    text = path.read_text(encoding="utf-8")
    for start, block in fenced_blocks(text):
        for offset, line in enumerate(block.splitlines()):
            stripped = line.strip()
            if stripped.startswith("#") or stripped.startswith("%"):
                continue
            arguments = extract_invocation(stripped)
            if arguments is None:
                continue
            where = f"{path}:{start + offset}"
            if not arguments or arguments[0].startswith("-"):
                continue  # bare repl / `repro --help` style
            subcommand = arguments[0]
            if subcommand not in SUBCOMMANDS:
                errors.append(
                    f"{where}: `repro {subcommand}` is not a CLI "
                    f"subcommand (have: {', '.join(sorted(SUBCOMMANDS))})"
                )
                continue
            for argument in arguments[1:]:
                if argument.startswith("-") or "=" in argument:
                    break  # flags onward; stop path checking
                if "/" in argument and not (REPO_ROOT / argument).exists():
                    errors.append(
                        f"{where}: `repro {subcommand}` references "
                        f"missing file {argument}"
                    )
                break  # only the first positional is a file
    return errors


def main(argv: list[str]) -> int:
    paths = [Path(p) for p in (argv or DEFAULT_DOCS)]
    errors: list[str] = []
    checked = 0
    for path in paths:
        if not path.is_absolute():
            path = REPO_ROOT / path
        if not path.exists():
            errors.append(f"{path}: documentation file missing")
            continue
        checked += 1
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"docs CLI check: {checked} file(s) OK")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
